//! Offline vendored work-stealing scoped thread pool.
//!
//! The workspace builds without registry access, so — like the
//! `rand`/`proptest`/`criterion` shims next door — this vendors the small
//! subset of a rayon/crossbeam-style API the solvers need:
//!
//! * [`ThreadPool::scope`] — scoped spawn: tasks may borrow the caller's
//!   stack (`crossbeam::scope` semantics); the call does not return until
//!   every spawned task has finished, and a panicking task is re-raised
//!   at the joiner.
//! * **Work stealing** — each worker owns a deque (LIFO for its own
//!   tasks, preserving the spawning task's locality) plus a shared FIFO
//!   injector for external submissions; an idle worker steals the oldest
//!   task from a sibling's deque, counted in [`ThreadPool::steals`].
//! * **Nested scopes** — a task may open its own scope on the same pool;
//!   a worker blocked joining a nested scope *helps* (executes queued
//!   tasks) instead of parking, so nesting cannot deadlock even on a
//!   single-worker pool.
//! * [`THREADS_ENV`]` = HSCHED_THREADS` — one env knob overriding both
//!   the solver-layer default ([`default_threads`], serial unless set)
//!   and the serving-layer default ([`max_threads`], all hardware
//!   threads unless set).
//!
//! Determinism note for the solvers built on top: the pool makes no
//! ordering promises between tasks — callers that need reproducible
//! results must make each task's *output* independent of scheduling
//! (e.g. reduce chunk results in chunk-index order, as
//! [`ThreadPool::run_parts`] does by returning results positionally).

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The environment variable overriding both thread-count defaults.
pub const THREADS_ENV: &str = "HSCHED_THREADS";

/// `HSCHED_THREADS` parsed as a positive integer, if set and valid.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV).ok().and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Solver-layer default thread count: `HSCHED_THREADS` if set, else 1.
///
/// Serial-by-default keeps every solve bit-reproducible without any
/// environment coupling; parallel execution is an explicit opt-in via
/// the env knob or a `threads` option on the solver.
pub fn default_threads() -> usize {
    env_threads().unwrap_or(1)
}

/// Serving-layer default thread count: `HSCHED_THREADS` if set, else all
/// hardware threads. Batch harnesses want the machine by default.
pub fn max_threads() -> usize {
    env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Resolve a `threads` option: `0` means "the solver-layer default"
/// ([`default_threads`]), any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Distinguishes workers of different pools in the thread-local marker.
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct Shared {
    id: usize,
    /// FIFO queue for tasks submitted from outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pushes/pops the back, thieves steal the
    /// front (oldest first — the classic Chase–Lev discipline, here under
    /// a mutex since the solvers' tasks are chunky).
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the sleep/wake protocol: pushers notify under this lock and
    /// idle workers re-check emptiness under it before waiting, so a
    /// wakeup between check and wait cannot be lost.
    sleep: Mutex<()>,
    wake: Condvar,
    steals: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pop work: own deque (LIFO), then the injector, then steal.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = self.locals[i].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = self.locals[j].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn has_task(&self) -> bool {
        !self.injector.lock().unwrap().is_empty()
            || self.locals.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn push(&self, task: Task) {
        match current_worker(self.id) {
            Some(i) => self.locals[i].lock().unwrap().push_back(task),
            None => self.injector.lock().unwrap().push_back(task),
        }
        // Notify under the sleep lock (see `sleep` docs).
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

fn current_worker(pool_id: usize) -> Option<usize> {
    WORKER.with(|w| match w.get() {
        Some((id, idx)) if id == pool_id => Some(idx),
        _ => None,
    })
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    WORKER.with(|w| w.set(Some((shared.id, idx))));
    loop {
        if let Some(task) = shared.find_task(Some(idx)) {
            task();
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.has_task() {
            continue; // pushed between our scan and the lock
        }
        drop(shared.wake.wait(guard).unwrap());
    }
}

/// A fixed-size work-stealing thread pool. See the crate docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `workers` OS threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hpool-{}-{}", shared.id, idx))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// The process-wide pool, sized [`max_threads`] at first use. The
    /// solvers run their chunked scans here: chunk *count* (and thus the
    /// result) comes from the caller's `threads` option, worker count
    /// only bounds how many chunks run at once.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(max_threads()))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Total tasks stolen from a sibling worker's deque since the pool
    /// was built — > 0 under load is the "work actually moved between
    /// workers" witness the tests and the batch harness report.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Index of the calling thread among this pool's workers, `None`
    /// from outside the pool — lets serving layers attribute completed
    /// work to the worker that ran it.
    pub fn current_worker_index(&self) -> Option<usize> {
        current_worker(self.shared.id)
    }

    /// Scoped spawn (`std::thread::scope` shape): tasks spawned on the
    /// [`Scope`] may borrow anything that outlives this call; the call
    /// returns only after every task finished. If a task panicked, the
    /// panic is resumed here (first panic wins); a panic in `f` itself
    /// is resumed after all already-spawned tasks completed.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.join_scope(&scope.state);
        let task_panic = scope.state.panic.lock().unwrap().take();
        match (result, task_panic) {
            (Ok(v), None) => v,
            (_, Some(p)) => resume_unwind(p),
            (Err(p), None) => resume_unwind(p),
        }
    }

    /// Run `f(0)`, `f(1)`, …, `f(parts − 1)` concurrently and return the
    /// results **in index order** — the deterministic-reduction primitive
    /// the chunked solver scans are built on. The caller computes part 0
    /// inline (so `parts = t` engages `t` runners: this thread plus up to
    /// `t − 1` workers); panics from any part propagate.
    pub fn run_parts<T, F>(&self, parts: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if parts == 0 {
            return Vec::new();
        }
        if parts == 1 {
            return vec![f(0)];
        }
        let mut out: Vec<Option<T>> = (0..parts).map(|_| None).collect();
        self.scope(|s| {
            let f = &f;
            let mut slots = out.iter_mut();
            let first = slots.next().expect("parts >= 1");
            for (k, slot) in slots.enumerate() {
                s.spawn(move || *slot = Some(f(k + 1)));
            }
            *first = Some(f(0));
        });
        out.into_iter().map(|o| o.expect("every part ran")).collect()
    }

    /// Wait for a scope's tasks. A worker of this pool helps (executes
    /// queued tasks — its own deque first, so nested scopes drain
    /// themselves); an external thread parks on the scope's condvar so
    /// measured worker counts stay exact.
    fn join_scope(&self, state: &ScopeState) {
        let me = current_worker(self.shared.id);
        if me.is_none() {
            let mut pending = state.pending.lock().unwrap();
            while *pending > 0 {
                pending = state.done.wait(pending).unwrap();
            }
            return;
        }
        loop {
            if *state.pending.lock().unwrap() == 0 {
                return;
            }
            if let Some(task) = self.shared.find_task(me) {
                task();
                continue;
            }
            // Remaining tasks are running on other workers; the timeout
            // is a belt-and-braces backstop against missed wakeups.
            let pending = state.pending.lock().unwrap();
            if *pending > 0 {
                drop(state.done.wait_timeout(pending, Duration::from_millis(1)).unwrap());
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn complete(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawn a task that may borrow from the enclosing scope. Runs on a
    /// pool worker (or on a thread helping a join); a panic is captured
    /// and re-raised by the owning [`ThreadPool::scope`] call.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope()` does not return before `state.pending` hits
        // zero, i.e. before this closure has run (or been dropped) —
        // everything it borrows ('scope ⊇ this call) outlives its
        // execution. Same erasure crossbeam's scoped spawn performs.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        self.pool.shared.push(Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(boxed)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            state.complete();
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_parts_returns_in_index_order() {
        let pool = ThreadPool::new(3);
        let out = pool.run_parts(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.run_parts(1, |i| i), vec![0]);
        assert_eq!(pool.run_parts(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(2);
        let data = vec![1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for x in &data {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(*x as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn resolve_threads_zero_is_default() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
